#include "store/artifact_store.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ios>
#include <signal.h>
#include <sstream>
#include <unistd.h>

#include "common/error.hpp"
#include "flow/job_io.hpp"

namespace hlp::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagic = "hlp-artifact";

// FNV-1a 64: the content address of a key and the payload checksum. Not
// cryptographic — the store defends against crashes and bit rot, not
// adversaries — but a 64-bit space over a handful of entries per sweep
// makes accidental collisions negligible (and a collision is handled:
// distinct keys keep the first owner).
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// flow/job_io keeps its numeric helpers private; the store re-implements
// the same conventions (hexfloat doubles via strtod, whole-token numeric
// parses) so round trips are bit-exact without widening job_io's API.
std::string fmt_double(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

double parse_double(const std::string& s, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  HLP_REQUIRE(end && *end == '\0' && end != s.c_str() && errno != ERANGE,
              "artifact " << what << ": bad double '" << s << "'");
  return v;
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  HLP_REQUIRE(end && *end == '\0' && end != s.c_str() && errno != ERANGE &&
                  s[0] != '-',
              "artifact " << what << ": bad count '" << s << "'");
  return static_cast<std::uint64_t>(v);
}

int parse_int(const std::string& s, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  HLP_REQUIRE(end && *end == '\0' && end != s.c_str() && errno != ERANGE &&
                  v >= INT_MIN && v <= INT_MAX,
              "artifact " << what << ": bad integer '" << s << "'");
  return static_cast<int>(v);
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> tok;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tok.push_back(t);
  return tok;
}

// Line cursor over a parsed byte range; every read names the source and
// the line it expected, so truncation errors point at the defect.
class Reader {
 public:
  Reader(const std::string& bytes, const std::string& what)
      : is_(bytes), what_(what) {}

  // Next raw line; throws on end of input.
  std::string raw(const char* expected) {
    std::string line;
    HLP_REQUIRE(std::getline(is_, line),
                "artifact " << what_ << ": truncated (expected " << expected
                            << " after line " << line_no_ << ")");
    ++line_no_;
    return line;
  }

  // Next line, tokenized; first token must be `head`.
  std::vector<std::string> expect(const std::string& head) {
    const std::string line = raw(("'" + head + "' line").c_str());
    auto tok = split_ws(line);
    HLP_REQUIRE(!tok.empty() && tok[0] == head,
                "artifact " << what_ << ": expected '" << head << "' on line "
                            << line_no_ << ", got '" << line << "'");
    return tok;
  }

  bool at_end() {
    std::string line;
    return !std::getline(is_, line);
  }

  const std::string& what() const { return what_; }

 private:
  std::istringstream is_;
  std::string what_;
  int line_no_ = 0;
};

void require_fields(const std::vector<std::string>& tok, std::size_t n,
                    const std::string& what) {
  HLP_REQUIRE(tok.size() == n, "artifact " << what << ": '" << tok[0]
                                           << "' line has " << tok.size() - 1
                                           << " fields, expected " << n - 1);
}

// --- vectors -------------------------------------------------------------

void save_int_vec(std::ostream& os, const char* head,
                  const std::vector<int>& v) {
  os << head << ' ' << v.size();
  for (const int x : v) os << ' ' << x;
  os << '\n';
}

std::vector<int> load_int_vec(Reader& r, const char* head) {
  const auto tok = r.expect(head);
  HLP_REQUIRE(tok.size() >= 2, "artifact " << r.what() << ": '" << head
                                           << "' line missing its count");
  const std::uint64_t n = parse_u64(tok[1], r.what());
  require_fields(tok, 2 + n, r.what());
  std::vector<int> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    v.push_back(parse_int(tok[2 + i], r.what()));
  return v;
}

void save_char_vec(std::ostream& os, const char* head,
                   const std::vector<char>& v) {
  os << head << ' ' << v.size();
  for (const char x : v) os << ' ' << static_cast<int>(x);
  os << '\n';
}

std::vector<char> load_char_vec(Reader& r, const char* head) {
  const auto ints = load_int_vec(r, head);
  return {ints.begin(), ints.end()};
}

// --- FuBinding -----------------------------------------------------------

void save_fus(std::ostream& os, const char* prefix, const FuBinding& fus) {
  os << prefix << "fus " << fus.fu_of_op.size();
  for (const int f : fus.fu_of_op) os << ' ' << f;
  os << '\n';
  os << prefix << "kinds " << fus.kind_of_fu.size();
  for (const OpKind k : fus.kind_of_fu) os << ' ' << to_string(k);
  os << '\n';
  save_char_vec(os, (std::string(prefix) + "flips").c_str(), fus.flipped);
}

OpKind parse_kind(const std::string& s, const std::string& what) {
  if (s == to_string(OpKind::kAdd)) return OpKind::kAdd;
  if (s == to_string(OpKind::kMult)) return OpKind::kMult;
  HLP_REQUIRE(false, "artifact " << what << ": unknown op kind '" << s << "'");
}

FuBinding load_fus(Reader& r, const char* prefix) {
  FuBinding fus;
  const std::string p(prefix);
  fus.fu_of_op = load_int_vec(r, (p + "fus").c_str());
  const auto tok = r.expect(p + "kinds");
  HLP_REQUIRE(tok.size() >= 2, "artifact " << r.what()
                                           << ": 'kinds' line missing count");
  const std::uint64_t n = parse_u64(tok[1], r.what());
  require_fields(tok, 2 + n, r.what());
  fus.kind_of_fu.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    fus.kind_of_fu.push_back(parse_kind(tok[2 + i], r.what()));
  fus.flipped = load_char_vec(r, (p + "flips").c_str());
  return fus;
}

// --- Netlist -------------------------------------------------------------

void save_netlist(std::ostream& os, const Netlist& n) {
  os << "netlist " << flow::encode_token(n.name()) << ' ' << n.num_nets()
     << ' ' << n.num_gates() << ' ' << n.num_latches() << ' '
     << n.outputs().size() << '\n';
  for (NetId id = 0; id < n.num_nets(); ++id)
    os << "net " << flow::encode_token(n.net_name(id)) << ' '
       << (n.is_input(id) ? 1 : 0) << '\n';
  for (const Gate& g : n.gates()) {
    os << "gate " << g.out << ' ' << g.tt.num_inputs() << ' ' << g.tt.bits()
       << ' ' << g.ins.size();
    for (const NetId in : g.ins) os << ' ' << in;
    os << '\n';
  }
  for (const Latch& l : n.latches()) os << "latch " << l.q << ' ' << l.d << '\n';
  save_int_vec(os, "outs", n.outputs());
}

Netlist load_netlist(Reader& r) {
  const auto hdr = r.expect("netlist");
  require_fields(hdr, 6, r.what());
  Netlist n(flow::decode_token(hdr[1]));
  const int nets = parse_int(hdr[2], r.what());
  const int gates = parse_int(hdr[3], r.what());
  const int latches = parse_int(hdr[4], r.what());
  const int outs = parse_int(hdr[5], r.what());
  HLP_REQUIRE(nets >= 0 && gates >= 0 && latches >= 0 && outs >= 0,
              "artifact " << r.what() << ": negative netlist counts");
  for (int id = 0; id < nets; ++id) {
    const auto tok = r.expect("net");
    require_fields(tok, 3, r.what());
    const std::string name = flow::decode_token(tok[1]);
    const int is_input = parse_int(tok[2], r.what());
    // Nets are serialised in id order, so re-adding in line order rebuilds
    // identical ids (inputs() is creation order, i.e. ascending too).
    const NetId got = is_input ? n.add_input(name) : n.add_net(name);
    HLP_REQUIRE(got == id, "artifact " << r.what()
                                       << ": net ids out of order");
  }
  for (int g = 0; g < gates; ++g) {
    const auto tok = r.expect("gate");
    HLP_REQUIRE(tok.size() >= 5, "artifact " << r.what()
                                             << ": short 'gate' line");
    const NetId out = parse_int(tok[1], r.what());
    const int k = parse_int(tok[2], r.what());
    const std::uint64_t bits = parse_u64(tok[3], r.what());
    const std::uint64_t nins = parse_u64(tok[4], r.what());
    require_fields(tok, 5 + nins, r.what());
    HLP_REQUIRE(k >= 0 && k <= kMaxTtInputs,
                "artifact " << r.what() << ": gate fanin " << k
                            << " out of range");
    std::vector<NetId> ins;
    ins.reserve(nins);
    for (std::uint64_t i = 0; i < nins; ++i)
      ins.push_back(parse_int(tok[5 + i], r.what()));
    n.add_gate(out, std::move(ins), TruthTable(k, bits));
  }
  for (int l = 0; l < latches; ++l) {
    const auto tok = r.expect("latch");
    require_fields(tok, 3, r.what());
    n.add_latch(parse_int(tok[1], r.what()), parse_int(tok[2], r.what()));
  }
  const std::vector<int> outputs = load_int_vec(r, "outs");
  HLP_REQUIRE(static_cast<int>(outputs.size()) == outs,
              "artifact " << r.what() << ": outs count disagrees with the "
                          << "netlist header");
  for (const NetId o : outputs) n.add_output(o);
  n.validate();
  return n;
}

// --- Entry payload -------------------------------------------------------

void save_entry(std::ostream& os, const ArtifactStore::Entry& e) {
  save_fus(os, "", e.fus);
  os << "refine " << (e.refined ? 1 : 0) << ' ' << e.refine.flips_applied
     << ' ' << e.refine.passes << ' ' << fmt_double(e.refine.cost_before)
     << ' ' << fmt_double(e.refine.cost_after) << '\n';
  save_fus(os, "r", e.refine.fus);
  os << "mux " << e.mux_stats.largest_mux << ' ' << e.mux_stats.mux_length
     << ' ' << e.mux_stats.num_fus << ' ' << fmt_double(e.mux_stats.muxdiff_mean)
     << ' ' << fmt_double(e.mux_stats.muxdiff_variance) << '\n';
  save_int_vec(os, "muxa", e.mux_stats.mux_size_a);
  save_int_vec(os, "muxb", e.mux_stats.mux_size_b);
  save_int_vec(os, "muxdiff", e.mux_stats.muxdiff);
  os << "clock " << fmt_double(e.clock_period_ns) << '\n';
  os << "map " << e.mapped.num_luts << ' ' << e.mapped.depth << '\n';
  os << "datapath " << e.datapath.width << ' ' << e.datapath.num_phases
     << '\n';
  save_int_vec(os, "datapos", e.datapath.data_input_pos);
  os << "controls " << e.datapath.controls.size() << '\n';
  for (const ControlGroup& c : e.datapath.controls) {
    os << "ctl " << flow::encode_token(c.name) << ' '
       << c.input_positions.size();
    for (const int p : c.input_positions) os << ' ' << p;
    os << ' ' << c.select_by_phase.size();
    for (const int s : c.select_by_phase) os << ' ' << s;
    os << '\n';
  }
  save_netlist(os, e.datapath.netlist);
  save_netlist(os, e.mapped.lut_netlist);
}

ArtifactStore::Entry load_entry(Reader& r) {
  ArtifactStore::Entry e;
  e.fus = load_fus(r, "");
  {
    const auto tok = r.expect("refine");
    require_fields(tok, 6, r.what());
    e.refined = parse_int(tok[1], r.what()) != 0;
    e.refine.flips_applied = parse_int(tok[2], r.what());
    e.refine.passes = parse_int(tok[3], r.what());
    e.refine.cost_before = parse_double(tok[4], r.what());
    e.refine.cost_after = parse_double(tok[5], r.what());
  }
  e.refine.fus = load_fus(r, "r");
  {
    const auto tok = r.expect("mux");
    require_fields(tok, 6, r.what());
    e.mux_stats.largest_mux = parse_int(tok[1], r.what());
    e.mux_stats.mux_length = parse_int(tok[2], r.what());
    e.mux_stats.num_fus = parse_int(tok[3], r.what());
    e.mux_stats.muxdiff_mean = parse_double(tok[4], r.what());
    e.mux_stats.muxdiff_variance = parse_double(tok[5], r.what());
  }
  e.mux_stats.mux_size_a = load_int_vec(r, "muxa");
  e.mux_stats.mux_size_b = load_int_vec(r, "muxb");
  e.mux_stats.muxdiff = load_int_vec(r, "muxdiff");
  {
    const auto tok = r.expect("clock");
    require_fields(tok, 2, r.what());
    e.clock_period_ns = parse_double(tok[1], r.what());
  }
  {
    const auto tok = r.expect("map");
    require_fields(tok, 3, r.what());
    e.mapped.num_luts = parse_int(tok[1], r.what());
    e.mapped.depth = parse_int(tok[2], r.what());
  }
  {
    const auto tok = r.expect("datapath");
    require_fields(tok, 3, r.what());
    e.datapath.width = parse_int(tok[1], r.what());
    e.datapath.num_phases = parse_int(tok[2], r.what());
  }
  e.datapath.data_input_pos = load_int_vec(r, "datapos");
  {
    const auto tok = r.expect("controls");
    require_fields(tok, 2, r.what());
    const std::uint64_t n = parse_u64(tok[1], r.what());
    e.datapath.controls.reserve(n);
    for (std::uint64_t c = 0; c < n; ++c) {
      const auto ctl = r.expect("ctl");
      HLP_REQUIRE(ctl.size() >= 3, "artifact " << r.what()
                                               << ": short 'ctl' line");
      ControlGroup group;
      group.name = flow::decode_token(ctl[1]);
      const std::uint64_t np = parse_u64(ctl[2], r.what());
      HLP_REQUIRE(ctl.size() >= 4 + np, "artifact " << r.what()
                                                    << ": short 'ctl' line");
      for (std::uint64_t i = 0; i < np; ++i)
        group.input_positions.push_back(parse_int(ctl[3 + i], r.what()));
      const std::uint64_t ns = parse_u64(ctl[3 + np], r.what());
      require_fields(ctl, 4 + np + ns, r.what());
      for (std::uint64_t i = 0; i < ns; ++i)
        group.select_by_phase.push_back(parse_int(ctl[4 + np + i], r.what()));
      e.datapath.controls.push_back(std::move(group));
    }
  }
  e.datapath.netlist = load_netlist(r);
  e.mapped.lut_netlist = load_netlist(r);
  return e;
}

std::string read_file(const std::string& path, bool* exists) {
  std::ifstream is(path, std::ios::binary);
  if (exists) *exists = is.good();
  if (!is.good()) return {};
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

// now - mtime in whole seconds, clamped at 0 (clock skew between the
// writer and this reader must not produce negative ages).
std::int64_t age_seconds_of(const fs::path& p) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(p, ec);
  if (ec) return 0;
  const auto age = fs::file_time_type::clock::now() - mtime;
  const auto secs =
      std::chrono::duration_cast<std::chrono::seconds>(age).count();
  return secs < 0 ? 0 : static_cast<std::int64_t>(secs);
}

// All committed objects, sorted by filename so every report that walks
// the store is deterministic regardless of directory iteration order.
std::vector<fs::path> sorted_objects(const std::string& objects_dir) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(objects_dir, ec)) {
    if (de.is_regular_file() && de.path().extension() == ".art")
      files.push_back(de.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// A staging dir is stale when the writer that owns it is provably gone:
// its `p<pid>-<n>` name carries a pid that no longer exists, or — for
// unparseable names and recycled-pid doubt — it has sat untouched far
// longer than any staged write lives (commits rename out immediately).
constexpr std::int64_t kStaleStagingAgeSeconds = 24 * 60 * 60;

bool staging_dir_is_stale(const fs::path& dir) {
  const std::string name = dir.filename().string();
  if (name.size() > 1 && name[0] == 'p') {
    errno = 0;
    char* end = nullptr;
    const long pid = std::strtol(name.c_str() + 1, &end, 10);
    if (end && *end == '-' && errno == 0 && pid > 0) {
      if (::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH)
        return true;  // owner is dead; its litter can never be committed
      return false;   // owner (or a pid reuse) is alive — leave it alone
    }
  }
  return age_seconds_of(dir) > kStaleStagingAgeSeconds;
}

}  // namespace

std::string ArtifactKey::full() const {
  // Newline-joined (no component may contain one: scopes and binding
  // hashes are single-line by construction, mode names are identifiers).
  return scope + '\n' + binding + '\n' + sa + '\n' + settle + '\n' + simd;
}

std::string ArtifactStore::content_address(const ArtifactKey& key) {
  return hex64(fnv1a64(key.full()));
}

std::string ArtifactStore::object_path(const ArtifactKey& key) const {
  return objects_ + "/" + content_address(key) + ".art";
}

std::string ArtifactStore::serialize(const ArtifactKey& key,
                                     const Entry& entry) {
  std::ostringstream payload;
  save_entry(payload, entry);
  const std::string body = payload.str();
  const std::size_t lines =
      static_cast<std::size_t>(std::count(body.begin(), body.end(), '\n'));
  std::ostringstream os;
  os << kMagic << " v1\n";
  os << "scope " << flow::encode_token(key.scope) << '\n';
  os << "binding " << flow::encode_token(key.binding) << '\n';
  os << "sa " << flow::encode_token(key.sa) << '\n';
  os << "settle " << flow::encode_token(key.settle) << '\n';
  os << "simd " << flow::encode_token(key.simd) << '\n';
  os << "payload " << lines << '\n';
  os << body;
  os << "sum " << hex64(fnv1a64(body)) << '\n';
  os << "end " << kMagic << ' ' << lines << '\n';
  return os.str();
}

LoadedArtifact ArtifactStore::parse(const std::string& bytes,
                                    const std::string& what) {
  Reader r(bytes, what);
  {
    const auto tok = r.expect(kMagic);
    require_fields(tok, 2, what);
    HLP_REQUIRE(tok[1] == "v1", "artifact " << what << ": unsupported version '"
                                            << tok[1] << "'");
  }
  LoadedArtifact art;
  auto tag = [&](const char* head) {
    const auto tok = r.expect(head);
    require_fields(tok, 2, what);
    return flow::decode_token(tok[1]);
  };
  art.key.scope = tag("scope");
  art.key.binding = tag("binding");
  art.key.sa = tag("sa");
  art.key.settle = tag("settle");
  art.key.simd = tag("simd");
  const auto counted = r.expect("payload");
  require_fields(counted, 2, what);
  const std::uint64_t lines = parse_u64(counted[1], what);
  // Capture the raw payload bytes first: the checksum must vet them
  // before any semantic parse, so a bit flip is reported as corruption
  // rather than whatever parse error it happens to trip.
  std::string body;
  for (std::uint64_t i = 0; i < lines; ++i) {
    body += r.raw("a payload line");
    body += '\n';
  }
  const auto sum = r.expect("sum");
  require_fields(sum, 2, what);
  HLP_REQUIRE(sum[1] == hex64(fnv1a64(body)),
              "artifact " << what << ": payload checksum mismatch");
  const auto footer = r.expect("end");
  require_fields(footer, 3, what);
  HLP_REQUIRE(footer[1] == kMagic && parse_u64(footer[2], what) == lines,
              "artifact " << what << ": bad footer");
  HLP_REQUIRE(r.at_end(), "artifact " << what << ": trailing bytes after the "
                                      << "footer");
  Reader payload(body, what);
  art.entry = load_entry(payload);
  return art;
}

ArtifactStore::ArtifactStore(const std::string& root) : root_(root) {
  HLP_REQUIRE(!root_.empty(), "artifact store root path is empty");
  objects_ = root_ + "/objects";
  // Per-handle staging dir: many processes (and many handles within one)
  // share a store, so staged writes never collide before their rename.
  static std::atomic<std::uint64_t> handle_seq{0};
  staging_ = root_ + "/staging/p" + std::to_string(::getpid()) + "-" +
             std::to_string(handle_seq.fetch_add(1));
  std::error_code ec;
  fs::create_directories(objects_, ec);
  HLP_REQUIRE(!ec && fs::is_directory(objects_),
              "cannot create artifact store objects dir '" << objects_ << "'"
                  << (ec ? ": " + ec.message() : std::string()));
  fs::create_directories(staging_, ec);
  HLP_REQUIRE(!ec && fs::is_directory(staging_),
              "cannot create artifact store staging dir '" << staging_ << "'"
                  << (ec ? ": " + ec.message() : std::string()));
}

ArtifactStore::~ArtifactStore() {
  std::error_code ec;
  fs::remove_all(staging_, ec);  // best effort; litter is harmless
}

std::shared_ptr<const ArtifactStore::Entry> ArtifactStore::load_strict(
    const ArtifactKey& key) const {
  const std::string path = object_path(key);
  bool exists = false;
  const std::string bytes = read_file(path, &exists);
  HLP_REQUIRE(exists, "cannot open artifact '" << path << "'");
  LoadedArtifact art = parse(bytes, "'" + path + "'");
  HLP_REQUIRE(art.key.scope == key.scope && art.key.binding == key.binding,
              "artifact '" << path << "': key mismatch (address collision or "
                           << "tampered tags)");
  auto tag_check = [&](const char* name, const std::string& got,
                       const std::string& want) {
    HLP_REQUIRE(got == want, "artifact '" << path << "': " << name
                                          << " mode tag '" << got
                                          << "' != requested '" << want
                                          << "'");
  };
  tag_check("sa", art.key.sa, key.sa);
  tag_check("settle", art.key.settle, key.settle);
  tag_check("simd", art.key.simd, key.simd);
  return std::make_shared<const Entry>(std::move(art.entry));
}

std::shared_ptr<const ArtifactStore::Entry> ArtifactStore::find(
    const ArtifactKey& key) {
  bool exists = false;
  read_file(object_path(key), &exists);
  if (!exists) {
    ++misses_;
    return nullptr;
  }
  try {
    auto entry = load_strict(key);
    ++hits_;
    return entry;
  } catch (const std::exception&) {
    // Corruption costs a recompute, never an error — and never partial
    // state: the bad object stays untouched until a publish repairs it.
    ++rejected_;
    return nullptr;
  }
}

void ArtifactStore::write_object(const std::string& path,
                                 const std::string& bytes) {
  const std::string tmp =
      staging_ + "/" + std::to_string(tmp_seq_.fetch_add(1)) + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    os << bytes;
    HLP_REQUIRE(os.good(), "cannot write artifact staging file '" << tmp
                                                                  << "'");
  }
  HLP_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot move '" << tmp << "' to '" << path << "'");
  ++publishes_;
}

void ArtifactStore::publish(const ArtifactKey& key, const Entry& entry) {
  const std::string blob = serialize(key, entry);
  const std::string path = object_path(key);
  bool exists = false;
  const std::string existing = read_file(path, &exists);
  if (exists) {
    if (existing == blob) return;  // overlap agrees bit for bit
    bool valid = true;
    ArtifactKey recorded;
    try {
      recorded = parse(existing, "'" + path + "'").key;
    } catch (const std::exception&) {
      valid = false;
    }
    if (valid) {
      // Same key, different bytes: every producer is deterministic, so two
      // configurations that disagree are sharing a store they must not.
      HLP_REQUIRE(recorded != key,
                  "artifact store conflict on '"
                      << path << "': an existing valid entry for the same key "
                      << "disagrees with the published bytes");
      // A genuine 64-bit address collision hashes the recorded key to this
      // very path — first owner wins. A recorded key that does NOT hash
      // here means the file was planted (renamed, tampered tags): that is
      // damage, not a collision, so fall through and repair by overwrite.
      if (object_path(recorded) == path) return;
    }
    // Invalid/misplaced existing bytes (crash litter, bit rot, planted
    // files): repair by overwrite.
  }
  write_object(path, blob);
}

std::size_t ArtifactStore::merge_from(const std::string& other_root) {
  const fs::path src = fs::path(other_root) / "objects";
  std::error_code ec;
  HLP_REQUIRE(fs::is_directory(src, ec),
              "artifact store merge source '" << other_root
                                              << "' has no objects/ dir");
  std::vector<fs::path> files;
  for (const auto& de : fs::directory_iterator(src)) {
    if (de.is_regular_file() && de.path().extension() == ".art")
      files.push_back(de.path());
  }
  std::sort(files.begin(), files.end());
  // Stage strictly before writing anything (SaCache::merge_from's rule): a
  // corrupt source entry or an overlap conflict rejects the whole merge
  // with this store untouched.
  struct Staged {
    ArtifactKey key;
    std::string bytes;
  };
  std::vector<Staged> staged;
  staged.reserve(files.size());
  for (const auto& file : files) {
    bool exists = false;
    const std::string bytes = read_file(file.string(), &exists);
    HLP_REQUIRE(exists, "cannot open artifact '" << file.string() << "'");
    LoadedArtifact art = parse(bytes, "'" + file.string() + "'");
    HLP_REQUIRE(content_address(art.key) + ".art" == file.filename().string(),
                "artifact '" << file.string()
                             << "': file name does not match its content "
                             << "address (renamed or tampered)");
    staged.push_back({std::move(art.key), std::move(bytes)});
  }
  std::vector<const Staged*> writes;
  for (const Staged& s : staged) {
    const std::string path = object_path(s.key);
    bool exists = false;
    const std::string existing = read_file(path, &exists);
    if (exists) {
      if (existing == s.bytes) continue;
      bool valid = true;
      ArtifactKey recorded;
      try {
        recorded = parse(existing, "'" + path + "'").key;
      } catch (const std::exception&) {
        valid = false;
      }
      if (valid) {
        HLP_REQUIRE(recorded != s.key,
                    "artifact store merge conflict on '"
                        << path << "': the source entry disagrees with an "
                        << "existing valid entry for the same key");
        continue;  // address collision: keep ours
      }
    }
    writes.push_back(&s);
  }
  for (const Staged* s : writes) write_object(object_path(s->key), s->bytes);
  return writes.size();
}

std::size_t ArtifactStore::size() const {
  std::size_t n = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(objects_, ec)) {
    if (de.is_regular_file() && de.path().extension() == ".art") ++n;
  }
  return n;
}

std::vector<ObjectInfo> ArtifactStore::enumerate() const {
  std::vector<ObjectInfo> out;
  for (const fs::path& p : sorted_objects(objects_)) {
    ObjectInfo info;
    info.path = p.string();
    info.address = p.stem().string();
    std::error_code ec;
    const std::uintmax_t bytes = fs::file_size(p, ec);
    info.bytes = ec ? 0 : bytes;
    info.age_seconds = age_seconds_of(p);
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t ArtifactStore::sweep_stale_staging() {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(root_ + "/staging", ec)) {
    if (!de.is_directory()) continue;
    if (de.path() == fs::path(staging_)) continue;  // never our own
    if (!staging_dir_is_stale(de.path())) continue;
    std::error_code rec;
    fs::remove_all(de.path(), rec);
    if (!rec) ++removed;
  }
  return removed;
}

FsckReport ArtifactStore::fsck(bool repair) {
  FsckReport report;
  for (const fs::path& p : sorted_objects(objects_)) {
    ++report.scanned;
    std::string defect;
    try {
      bool exists = false;
      const std::string bytes = read_file(p.string(), &exists);
      HLP_REQUIRE(exists, "cannot open artifact '" << p.string() << "'");
      const LoadedArtifact art = parse(bytes, "'" + p.string() + "'");
      HLP_REQUIRE(
          content_address(art.key) + ".art" == p.filename().string(),
          "artifact '" << p.string() << "': file name does not match its "
                       << "content address (renamed or tampered)");
      ++report.valid;
      continue;
    } catch (const std::exception& e) {
      defect = e.what();
    }
    report.rejected.push_back(p.string() + ": " + defect);
    if (repair) {
      std::error_code ec;
      if (fs::remove(p, ec) && !ec) ++report.repaired;
    }
  }
  if (repair) report.staging_removed = sweep_stale_staging();
  return report;
}

GcReport ArtifactStore::gc(const GcOptions& opt) {
  GcReport report;
  std::vector<fs::path> drop;
  for (const fs::path& p : sorted_objects(objects_)) {
    ++report.scanned;
    bool valid = true;
    try {
      bool exists = false;
      const std::string bytes = read_file(p.string(), &exists);
      HLP_REQUIRE(exists, "cannot open artifact '" << p.string() << "'");
      const LoadedArtifact art = parse(bytes, "'" + p.string() + "'");
      HLP_REQUIRE(content_address(art.key) + ".art" == p.filename().string(),
                  "artifact '" << p.string() << "': misplaced");
    } catch (const std::exception&) {
      valid = false;
    }
    if (!valid) {
      ++report.dropped_invalid;
      drop.push_back(p);
    } else if (opt.live_addresses &&
               !opt.live_addresses->count(p.stem().string())) {
      ++report.dropped_unreferenced;
      drop.push_back(p);
    } else if (opt.max_age_seconds >= 0 &&
               age_seconds_of(p) > opt.max_age_seconds) {
      ++report.dropped_aged;
      drop.push_back(p);
    } else {
      ++report.kept;
    }
  }
  if (!opt.dry_run) {
    for (const fs::path& p : drop) {
      std::error_code ec;
      fs::remove(p, ec);
    }
    report.staging_removed = sweep_stale_staging();
  }
  return report;
}

}  // namespace hlp::store
