// LOPASS-style baseline functional-unit binder.
//
// Reconstruction of the binding stage of LOPASS (Chen, Cong, Fan —
// ISLPED'03 / TVLSI), the comparison system of the paper's evaluation:
// a *single-pass* binder that fixes the allocation to the resource
// constraint and assigns operations to functional units control step by
// control step with a minimum-cost bipartite assignment (the practical
// equivalent of the network-flow formulation of Chen & Cong, ASP-DAC'04,
// which binds all resources simultaneously).
//
// LOPASS optimised power with a high-level, *glitch-blind* estimator
// (pre-characterised FU/mux switching under zero-delay transition
// propagation) plus interconnect estimation. The assignment cost here is
// therefore the zero-delay SA estimate of the partial datapath the
// assignment would grow (muxes + FU, technology mapped) — exactly the
// estimator quality LOPASS had. What it lacks, by construction, is what
// HLPower adds: glitch-aware SA and explicit mux balancing (Eq. 4).
#pragma once

#include <cstdint>

#include "binding/binding.hpp"
#include "sched/schedule.hpp"

namespace hlp {

struct LopassParams {
  /// Datapath width used for the glitch-blind partial-datapath power
  /// estimates (matches the evaluation width).
  int width = 8;
  /// Weight of the interconnect term (new mux inputs) relative to the
  /// estimated power term, mirroring LOPASS's interconnect estimation.
  double interconnect_weight = 0.05;
};

/// Bind ops to `rc`-many FUs per kind. Deterministic.
FuBinding bind_fus_lopass(const Cdfg& g, const Schedule& s,
                          const RegisterBinding& regs,
                          const ResourceConstraint& rc,
                          const LopassParams& params = {});

/// Convenience: registers (shared algorithm) + LOPASS FU binding.
Binding bind_lopass(const Cdfg& g, const Schedule& s,
                    const ResourceConstraint& rc,
                    const LopassParams& params = {},
                    std::uint64_t reg_seed = 42);

}  // namespace hlp
