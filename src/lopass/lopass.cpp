#include "lopass/lopass.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <tuple>

#include "binding/register_binder.hpp"
#include "common/error.hpp"
#include "graph/bipartite.hpp"
#include "mapper/techmap.hpp"
#include "power/activity.hpp"
#include "rtl/partial_datapath.hpp"

namespace hlp {
namespace {

// Glitch-blind (zero-delay) switching-activity estimate of a partial
// datapath, memoised per (kind, muxA, muxB, width). This is the estimator
// quality LOPASS optimised with: it sees functional transitions and grows
// with logic size, but is blind to path-imbalance glitching.
class ZeroDelaySaTable {
 public:
  /// Thread-safe: the process-wide table is shared by every runner thread
  /// that binds with lopass. The (deterministic) SA computation runs
  /// outside the lock, like SaCache — racing cold misses compute the same
  /// value and the first insertion wins.
  double get(OpKind kind, int a, int b, int width) {
    const auto key = std::make_tuple(op_kind_index(kind), a, b, width);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = memo_.find(key);
      if (it != memo_.end()) return it->second;
    }
    const Netlist dp = make_partial_datapath(kind, a, b, width);
    const MapResult mapped = tech_map(dp, MapParams{});
    const double sa = estimate_activity_zero_delay(mapped.lut_netlist).total_sa;
    std::lock_guard<std::mutex> lock(mu_);
    return memo_.emplace(key, sa).first->second;
  }

 private:
  std::mutex mu_;
  std::map<std::tuple<int, int, int, int>, double> memo_;
};

}  // namespace

FuBinding bind_fus_lopass(const Cdfg& g, const Schedule& s,
                          const RegisterBinding& regs,
                          const ResourceConstraint& rc,
                          const LopassParams& params) {
  s.validate(g);
  regs.validate(g, s);
  HLP_REQUIRE(params.width >= 1, "width must be >= 1");
  for (int k = 0; k < kNumOpKinds; ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    HLP_REQUIRE(rc.limit(kind) >= s.max_density(g, kind),
                "constraint " << rc.limit(kind) << " for " << to_string(kind)
                              << " below max density "
                              << s.max_density(g, kind));
  }

  FuBinding out;
  out.fu_of_op.assign(g.num_ops(), -1);
  out.flipped.assign(g.num_ops(), 0);
  // Allocate exactly the constraint (LOPASS performs allocation up front).
  std::vector<std::vector<int>> fus_of_kind(kNumOpKinds);
  for (int k = 0; k < kNumOpKinds; ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    const int limit = rc.limit(kind);
    const bool used = g.num_ops_of_kind(kind) > 0;
    for (int i = 0; i < (used ? limit : 0); ++i) {
      fus_of_kind[k].push_back(out.num_fus());
      out.kind_of_fu.push_back(kind);
    }
  }

  // Persistent across calls: the table depends only on (kind, sizes, width),
  // mirroring LOPASS's pre-characterisation of FU/mux power.
  static ZeroDelaySaTable sa_table;

  // Port source sets accumulated as binding proceeds. LOPASS performs
  // binding *simultaneously* with the rest of synthesis, so it estimates a
  // port's mux size by the distinct *values* (variables) feeding it — it
  // cannot see register sharing. (HLPower's stated advantage is exactly
  // that registers are bound first, making mux sizes exact; Section 5.2.2.)
  std::vector<std::set<int>> srcs_a(out.num_fus()), srcs_b(out.num_fus());
  auto port_a_value = [&](int op) {
    return value_id(g, regs.lhs_on_port_a[op] ? g.op(op).lhs : g.op(op).rhs);
  };
  auto port_b_value = [&](int op) {
    return value_id(g, regs.lhs_on_port_a[op] ? g.op(op).rhs : g.op(op).lhs);
  };

  // Ops per control step, processed in schedule order (the chained
  // assignment equivalent of the simultaneous flow formulation).
  std::vector<std::vector<int>> ops_at_step(s.num_steps);
  for (int op = 0; op < g.num_ops(); ++op)
    ops_at_step[s.cstep_of_op[op]].push_back(op);

  for (int step = 0; step < s.num_steps; ++step) {
    for (int k = 0; k < kNumOpKinds; ++k) {
      const OpKind kind = static_cast<OpKind>(k);
      std::vector<int> ops;
      for (int op : ops_at_step[step])
        if (g.op(op).kind == kind) ops.push_back(op);
      if (ops.empty()) continue;
      const auto& fus = fus_of_kind[k];
      HLP_CHECK(ops.size() <= fus.size(), "schedule exceeds allocation");

      // Cost of assigning op i to FU j: the glitch-blind power estimate of
      // FU j's grown input stage, plus a small interconnect term (new mux
      // inputs), as in LOPASS's power + interconnect objective.
      // LOPASS's objective: pre-characterised (glitch-blind) FU switching
      // energy — identical for every same-kind candidate, so it decides
      // nothing within a kind — plus its interconnect estimation, which at
      // binding time can only count new *value* connections per port.
      // Mux balance and glitch-aware partial-datapath SA (the paper's
      // contribution) are deliberately absent.
      const double fu_energy =
          sa_table.get(kind, 1, 1, params.width);  // characterised FU alone
      // Both kinds are commutative: each op may join a port either way
      // (port assignment optimisation, Chen & Cong ASP-DAC'04); the cost
      // takes the cheaper orientation.
      auto orientation_cost = [&](int op, int f, bool flip) {
        const int va = flip ? port_b_value(op) : port_a_value(op);
        const int vb = flip ? port_a_value(op) : port_b_value(op);
        return (srcs_a[f].count(va) ? 0 : 1) + (srcs_b[f].count(vb) ? 0 : 1);
      };
      std::vector<std::vector<double>> cost(
          ops.size(), std::vector<double>(fus.size(), 0.0));
      for (std::size_t i = 0; i < ops.size(); ++i) {
        for (std::size_t j = 0; j < fus.size(); ++j) {
          const int f = fus[j];
          const int best = std::min(orientation_cost(ops[i], f, false),
                                    orientation_cost(ops[i], f, true));
          cost[i][j] = fu_energy + params.interconnect_weight * best;
        }
      }
      const MatchingResult m = min_cost_assignment(cost, /*forbidden=*/1e18);
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const int op = ops[i];
        const int f = fus[m.match_of_left[i]];
        const bool flip =
            orientation_cost(op, f, true) < orientation_cost(op, f, false);
        out.fu_of_op[op] = f;
        out.flipped[op] = flip ? 1 : 0;
        srcs_a[f].insert(flip ? port_b_value(op) : port_a_value(op));
        srcs_b[f].insert(flip ? port_a_value(op) : port_b_value(op));
      }
    }
  }

  // Drop FUs that never received an op (constraint above density): keep
  // allocation tight, as LOPASS reports the used allocation.
  std::vector<int> remap(out.num_fus(), -1);
  FuBinding tight;
  tight.fu_of_op.assign(g.num_ops(), -1);
  tight.flipped = out.flipped;
  for (int op = 0; op < g.num_ops(); ++op) {
    const int f = out.fu_of_op[op];
    HLP_CHECK(f >= 0, "op " << op << " left unbound");
    if (remap[f] < 0) {
      remap[f] = tight.num_fus();
      tight.kind_of_fu.push_back(out.kind_of_fu[f]);
    }
    tight.fu_of_op[op] = remap[f];
  }
  tight.validate(g, s, rc);
  return tight;
}

Binding bind_lopass(const Cdfg& g, const Schedule& s,
                    const ResourceConstraint& rc, const LopassParams& params,
                    std::uint64_t reg_seed) {
  Binding b;
  b.regs = bind_registers(g, s, reg_seed);
  b.fus = bind_fus_lopass(g, s, b.regs, rc, params);
  return b;
}

}  // namespace hlp
