// Register allocation and binding (Section 5.1), after Huang et al.,
// "Data path allocation based on bipartite weighted matching", DAC 1990.
//
// The allocation equals the maximum number of values with overlapping
// lifetimes. Values are bound one birth-time cluster at a time (a cluster
// of mutually-unsharable variables), in ascending birth order, by solving a
// weighted bipartite matching between the cluster and the compatible
// registers; weights favour register reuse between values with a common
// producer kind or consumer (interconnect affinity). Operator ports are
// randomly assigned here, exactly as the paper states.
//
// Both LOPASS and HLPower runs share the register binding produced here
// (Table 2: "identical schedules and register bindings were used").
#pragma once

#include <cstdint>

#include "binding/binding.hpp"

namespace hlp {

/// Bind registers for a scheduled CDFG. Deterministic in `seed` (port
/// assignment and tie-breaking).
RegisterBinding bind_registers(const Cdfg& g, const Schedule& s,
                               std::uint64_t seed = 42);

}  // namespace hlp
