#include "binding/binding.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

int RegisterBinding::port_a_reg(const Cdfg& g, int op) const {
  const auto& o = g.op(op);
  const ValueRef v = lhs_on_port_a[op] ? o.lhs : o.rhs;
  return reg_of_value[value_id(g, v)];
}

int RegisterBinding::port_b_reg(const Cdfg& g, int op) const {
  const auto& o = g.op(op);
  const ValueRef v = lhs_on_port_a[op] ? o.rhs : o.lhs;
  return reg_of_value[value_id(g, v)];
}

void RegisterBinding::validate(const Cdfg& g, const Schedule& s) const {
  HLP_CHECK(static_cast<int>(reg_of_value.size()) == num_values(g),
            "register binding covers " << reg_of_value.size() << " values, want "
                                       << num_values(g));
  HLP_CHECK(static_cast<int>(lhs_on_port_a.size()) == g.num_ops(),
            "port assignment size mismatch");
  const auto lt = compute_lifetimes(g, s);
  // Group values by register and check pairwise disjointness.
  std::vector<std::vector<int>> values_of_reg(num_registers);
  for (int v = 0; v < num_values(g); ++v) {
    const int r = reg_of_value[v];
    HLP_CHECK(r >= 0 && r < num_registers, "value " << v << " bound to register "
                                                    << r << " out of range");
    values_of_reg[r].push_back(v);
  }
  for (int r = 0; r < num_registers; ++r) {
    auto& vs = values_of_reg[r];
    std::sort(vs.begin(), vs.end(),
              [&](int a, int b) { return lt[a].birth < lt[b].birth; });
    for (std::size_t i = 1; i < vs.size(); ++i)
      HLP_CHECK(!overlaps(lt[vs[i - 1]], lt[vs[i]]),
                "register " << r << " holds overlapping values " << vs[i - 1]
                            << " and " << vs[i]);
  }
}

int FuBinding::port_a_reg(const Cdfg& g, const RegisterBinding& regs,
                          int op) const {
  return is_flipped(op) ? regs.port_b_reg(g, op) : regs.port_a_reg(g, op);
}

int FuBinding::port_b_reg(const Cdfg& g, const RegisterBinding& regs,
                          int op) const {
  return is_flipped(op) ? regs.port_a_reg(g, op) : regs.port_b_reg(g, op);
}

int FuBinding::num_fus_of_kind(OpKind k) const {
  return static_cast<int>(
      std::count(kind_of_fu.begin(), kind_of_fu.end(), k));
}

std::vector<std::vector<int>> FuBinding::ops_of_fu(const Cdfg& g) const {
  std::vector<std::vector<int>> out(num_fus());
  for (int i = 0; i < g.num_ops(); ++i) out[fu_of_op[i]].push_back(i);
  return out;
}

void FuBinding::validate(const Cdfg& g, const Schedule& s,
                         const ResourceConstraint& rc) const {
  HLP_CHECK(static_cast<int>(fu_of_op.size()) == g.num_ops(),
            "FU binding covers " << fu_of_op.size() << " ops, want "
                                 << g.num_ops());
  HLP_CHECK(flipped.empty() ||
                static_cast<int>(flipped.size()) == g.num_ops(),
            "flip vector must be empty or cover every op");
  for (int i = 0; i < g.num_ops(); ++i) {
    const int f = fu_of_op[i];
    HLP_CHECK(f >= 0 && f < num_fus(), "op " << i << " bound to FU " << f
                                             << " out of range");
    HLP_CHECK(kind_of_fu[f] == g.op(i).kind,
              "op '" << g.op(i).name << "' (" << to_string(g.op(i).kind)
                     << ") bound to a " << to_string(kind_of_fu[f]) << " FU");
  }
  const auto groups = ops_of_fu(g);
  for (int f = 0; f < num_fus(); ++f) {
    std::vector<int> steps;
    for (int op : groups[f]) steps.push_back(s.cstep_of_op[op]);
    std::sort(steps.begin(), steps.end());
    HLP_CHECK(std::adjacent_find(steps.begin(), steps.end()) == steps.end(),
              "FU " << f << " executes two ops in the same control step");
  }
  for (int k = 0; k < kNumOpKinds; ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    HLP_CHECK(num_fus_of_kind(kind) <= rc.limit(kind),
              "allocation of " << num_fus_of_kind(kind) << " "
                               << to_string(kind) << " FUs exceeds limit "
                               << rc.limit(kind));
  }
}

FuPortSources fu_port_sources(const Cdfg& g, const RegisterBinding& regs,
                              const FuBinding& fus) {
  FuPortSources out;
  out.port_a.resize(fus.num_fus());
  out.port_b.resize(fus.num_fus());
  for (int i = 0; i < g.num_ops(); ++i) {
    const int f = fus.fu_of_op[i];
    out.port_a[f].push_back(fus.port_a_reg(g, regs, i));
    out.port_b[f].push_back(fus.port_b_reg(g, regs, i));
  }
  auto uniq = [](std::vector<int>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (auto& v : out.port_a) uniq(v);
  for (auto& v : out.port_b) uniq(v);
  return out;
}

}  // namespace hlp
