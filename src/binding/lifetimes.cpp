#include "binding/lifetimes.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

std::vector<Lifetime> compute_lifetimes(const Cdfg& g, const Schedule& s) {
  s.validate(g);
  std::vector<Lifetime> lt(num_values(g));
  for (int i = 0; i < g.num_inputs(); ++i) lt[i] = {0, 0};
  for (int i = 0; i < g.num_ops(); ++i) {
    const int b = s.cstep_of_op[i] + 1;
    lt[g.num_inputs() + i] = {b, b};
  }
  // Extend deaths to the last reading control step.
  for (int i = 0; i < g.num_ops(); ++i) {
    const int read_step = s.cstep_of_op[i];
    auto extend = [&](ValueRef v) {
      auto& l = lt[value_id(g, v)];
      l.death = std::max(l.death, read_step);
    };
    extend(g.op(i).lhs);
    extend(g.op(i).rhs);
  }
  // Output values are observable until the end of the schedule.
  for (int i = 0; i < g.num_outputs(); ++i) {
    auto& l = lt[value_id(g, g.output(i).value)];
    l.death = std::max(l.death, s.num_steps);
  }
  for (const auto& l : lt)
    HLP_CHECK(l.death >= l.birth, "value dies before it is born");
  return lt;
}

int max_live_values(const std::vector<Lifetime>& lifetimes) {
  if (lifetimes.empty()) return 0;
  int max_t = 0;
  for (const auto& l : lifetimes) max_t = std::max(max_t, l.death);
  std::vector<int> live(max_t + 2, 0);
  for (const auto& l : lifetimes) {
    ++live[l.birth];
    --live[l.death + 1];
  }
  int best = 0, cur = 0;
  for (int t = 0; t <= max_t; ++t) {
    cur += live[t];
    best = std::max(best, cur);
  }
  return best;
}

}  // namespace hlp
