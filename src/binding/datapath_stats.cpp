#include "binding/datapath_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace hlp {

DatapathStats compute_datapath_stats(const Cdfg& g, const RegisterBinding& regs,
                                     const FuBinding& fus) {
  const FuPortSources src = fu_port_sources(g, regs, fus);
  DatapathStats st;
  st.num_fus = fus.num_fus();
  st.mux_size_a.resize(st.num_fus);
  st.mux_size_b.resize(st.num_fus);
  st.muxdiff.resize(st.num_fus);

  double sum = 0.0;
  for (int f = 0; f < st.num_fus; ++f) {
    const int a = static_cast<int>(src.port_a[f].size());
    const int b = static_cast<int>(src.port_b[f].size());
    st.mux_size_a[f] = a;
    st.mux_size_b[f] = b;
    st.muxdiff[f] = std::abs(a - b);
    st.largest_mux = std::max({st.largest_mux, a, b});
    if (a >= 2) st.mux_length += a;
    if (b >= 2) st.mux_length += b;
    sum += st.muxdiff[f];
  }
  if (st.num_fus > 0) {
    st.muxdiff_mean = sum / st.num_fus;
    double var = 0.0;
    for (int d : st.muxdiff)
      var += (d - st.muxdiff_mean) * (d - st.muxdiff_mean);
    st.muxdiff_variance = var / st.num_fus;
  }
  return st;
}

}  // namespace hlp
