// Multiplexer statistics of a binding solution — the high-level metrics of
// Table 3 ("Largest MUX", "MUX Length") and Table 4 (mean/variance of
// muxDiff across all allocated resources).
//
// A functional unit port fed by n distinct registers needs an n-input
// multiplexer (n == 1 is a direct connection and contributes no mux).
// muxDiff of an FU is |size(muxA) - size(muxB)|, the quantity Eq. 4
// balances; unbalanced input muxes mean unbalanced path delays into the FU
// and therefore more glitching.
#pragma once

#include <vector>

#include "binding/binding.hpp"

namespace hlp {

struct DatapathStats {
  int largest_mux = 0;
  /// Sum of the sizes of all real (>= 2 input) FU-input multiplexers.
  int mux_length = 0;
  /// Number of allocated FUs (Table 4's "# muxes" granularity).
  int num_fus = 0;
  double muxdiff_mean = 0.0;
  double muxdiff_variance = 0.0;  // population variance
  std::vector<int> mux_size_a;    // per FU
  std::vector<int> mux_size_b;
  std::vector<int> muxdiff;       // per FU
};

DatapathStats compute_datapath_stats(const Cdfg& g, const RegisterBinding& regs,
                                     const FuBinding& fus);

}  // namespace hlp
