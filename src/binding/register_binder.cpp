#include "binding/register_binder.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/bipartite.hpp"

namespace hlp {
namespace {

// Affinity between a value and the values already in a register: sharing a
// producer kind or a consumer op suggests shared interconnect after FU
// binding, the [11] weighting rationale.
double affinity(const Cdfg& g, int value,
                const std::vector<std::vector<int>>& consumers,
                const std::vector<int>& occupants) {
  auto producer_kind = [&](int v) -> int {
    return v < g.num_inputs() ? -1
                              : op_kind_index(g.op(v - g.num_inputs()).kind);
  };
  double w = 0.0;
  for (int other : occupants) {
    if (producer_kind(other) >= 0 && producer_kind(other) == producer_kind(value))
      w += 0.5;
    for (int c1 : consumers[value])
      for (int c2 : consumers[other])
        if (c1 == c2) w += 0.25;
  }
  return w;
}

}  // namespace

RegisterBinding bind_registers(const Cdfg& g, const Schedule& s,
                               std::uint64_t seed) {
  const auto lt = compute_lifetimes(g, s);
  Rng rng(seed);

  RegisterBinding out;
  out.num_registers = max_live_values(lt);
  out.reg_of_value.assign(num_values(g), -1);
  out.lhs_on_port_a.assign(g.num_ops(), 0);
  for (int i = 0; i < g.num_ops(); ++i)
    out.lhs_on_port_a[i] = rng.chance(0.5) ? 1 : 0;

  const auto consumers = g.op_consumers();

  // Cluster values by birth time, bind clusters in ascending order.
  std::map<int, std::vector<int>> clusters;
  for (int v = 0; v < num_values(g); ++v) clusters[lt[v].birth].push_back(v);

  // Per register: values bound so far (their lifetimes are disjoint).
  std::vector<std::vector<int>> occupants(out.num_registers);
  // Latest death time among occupants — compatibility test for a new value
  // born after every previous occupant died.
  std::vector<int> last_death(out.num_registers, -1);

  for (auto& [birth, cluster] : clusters) {
    // Values in one cluster share a birth step, so their lifetimes overlap
    // pairwise: a cluster of mutually-unsharable variables.
    std::vector<std::vector<double>> weight(
        cluster.size(), std::vector<double>(out.num_registers, 0.0));
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const int v = cluster[i];
      for (int r = 0; r < out.num_registers; ++r) {
        if (last_death[r] >= lt[v].birth) continue;  // occupied
        weight[i][r] = 1.0 + affinity(g, v, consumers, occupants[r]) +
                       0.01 * rng.uniform();  // deterministic-seed tiebreak
      }
    }
    const MatchingResult m = max_weight_matching(weight);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      const int v = cluster[i];
      const int r = m.match_of_left[i];
      HLP_CHECK(r >= 0, "no free register for value " << v << " born at "
                                                      << lt[v].birth
                                                      << " (allocation too small?)");
      out.reg_of_value[v] = r;
      occupants[r].push_back(v);
      last_death[r] = std::max(last_death[r], lt[v].death);
    }
  }
  out.validate(g, s);
  return out;
}

}  // namespace hlp
