// Binding result types shared by HLPower and the LOPASS baseline, plus
// validation (Section 3: "produce a valid binding solution while meeting
// the resource constraint").
#pragma once

#include <vector>

#include "binding/lifetimes.hpp"
#include "cdfg/cdfg.hpp"
#include "sched/schedule.hpp"

namespace hlp {

/// Register binding: one register per value, plus the random operator-port
/// assignment the paper fixes during this step ("operator ports are
/// randomly bound during this step", Section 5.1).
struct RegisterBinding {
  int num_registers = 0;
  std::vector<int> reg_of_value;   // value id -> register id
  std::vector<char> lhs_on_port_a; // per op: 1 = lhs feeds port A

  /// Register holding the operand that feeds port A (resp. B) of op `i`.
  int port_a_reg(const Cdfg& g, int op) const;
  int port_b_reg(const Cdfg& g, int op) const;

  /// Throws unless every register holds at most one live value at a time.
  void validate(const Cdfg& g, const Schedule& s) const;
};

/// Functional-unit binding: dense FU ids across both kinds. Because both
/// resource kinds are commutative, a binder may also flip an operation's
/// operand orientation (port assignment optimisation, after Chen & Cong
/// ASP-DAC'04) — `flipped` records that choice per op (empty = none).
struct FuBinding {
  std::vector<int> fu_of_op;     // op id -> FU id
  std::vector<OpKind> kind_of_fu;
  std::vector<char> flipped;     // per op; may be empty (no flips)

  bool is_flipped(int op) const {
    return !flipped.empty() && flipped.at(op) != 0;
  }
  /// Register feeding port A (resp. B) of `op`, honouring the flip.
  int port_a_reg(const Cdfg& g, const RegisterBinding& regs, int op) const;
  int port_b_reg(const Cdfg& g, const RegisterBinding& regs, int op) const;

  int num_fus() const { return static_cast<int>(kind_of_fu.size()); }
  int num_fus_of_kind(OpKind k) const;
  /// Ops bound to each FU.
  std::vector<std::vector<int>> ops_of_fu(const Cdfg& g) const;

  /// Throws unless kinds match, no two ops on one FU share a control step,
  /// and the allocation meets `rc`.
  void validate(const Cdfg& g, const Schedule& s,
                const ResourceConstraint& rc) const;
};

/// Complete binding solution.
struct Binding {
  RegisterBinding regs;
  FuBinding fus;
};

/// Distinct source registers feeding each FU port (sorted).
struct FuPortSources {
  std::vector<std::vector<int>> port_a;  // per FU
  std::vector<std::vector<int>> port_b;
};
FuPortSources fu_port_sources(const Cdfg& g, const RegisterBinding& regs,
                              const FuBinding& fus);

}  // namespace hlp
