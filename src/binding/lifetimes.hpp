// Variable lifetime analysis over a scheduled CDFG.
//
// Value numbering: value v in [0, num_inputs) is the v-th primary input;
// value num_inputs + i is the result of operation i. A primary input is
// born at step 0; an operation scheduled at step s writes its result at the
// end of s, so the value is born at step s+1. A value dies at the latest
// control step that reads it; values feeding primary outputs live to the
// end of the schedule. Two values may share a register iff their [birth,
// death] intervals are disjoint.
#pragma once

#include <vector>

#include "cdfg/cdfg.hpp"
#include "sched/schedule.hpp"

namespace hlp {

struct Lifetime {
  int birth = 0;
  int death = 0;  // inclusive
};

inline bool overlaps(const Lifetime& a, const Lifetime& b) {
  return !(a.death < b.birth || b.death < a.birth);
}

/// Dense value id helpers.
inline int value_id(const Cdfg& g, ValueRef v) {
  return v.is_input() ? v.index : g.num_inputs() + v.index;
}
inline int num_values(const Cdfg& g) { return g.num_inputs() + g.num_ops(); }

/// Lifetime of every value (indexed by value id).
std::vector<Lifetime> compute_lifetimes(const Cdfg& g, const Schedule& s);

/// Maximum number of simultaneously-live values — the register allocation
/// ("the control step with the largest number of variables with overlapping
/// lifetimes", Section 5.1).
int max_live_values(const std::vector<Lifetime>& lifetimes);

}  // namespace hlp
