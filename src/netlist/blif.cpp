#include "netlist/blif.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hlp {

void BlifLibrary::add(Netlist model) {
  const std::string name = model.name();
  models_.insert_or_assign(name, std::move(model));
}

bool BlifLibrary::contains(const std::string& name) const {
  return models_.count(name) > 0;
}

const Netlist& BlifLibrary::get(const std::string& name) const {
  auto it = models_.find(name);
  HLP_REQUIRE(it != models_.end(), "model '" << name << "' not in library");
  return it->second;
}

void write_blif(const Netlist& n, std::ostream& os) {
  os << ".model " << n.name() << "\n.inputs";
  for (NetId i : n.inputs()) os << " " << n.net_name(i);
  os << "\n.outputs";
  for (NetId o : n.outputs()) os << " " << n.net_name(o);
  os << "\n";
  for (const auto& l : n.latches())
    os << ".latch " << n.net_name(l.d) << " " << n.net_name(l.q) << " 0\n";
  for (const auto& g : n.gates()) {
    os << ".names";
    for (NetId in : g.ins) os << " " << n.net_name(in);
    os << " " << n.net_name(g.out) << "\n";
    for (std::uint32_t m = 0; m < g.tt.num_rows(); ++m) {
      if (!g.tt.eval(m)) continue;
      for (int j = 0; j < g.tt.num_inputs(); ++j)
        os << (((m >> j) & 1u) ? '1' : '0');
      os << (g.tt.num_inputs() ? " " : "") << "1\n";
    }
  }
  os << ".end\n";
}

std::string blif_to_string(const Netlist& n) {
  std::ostringstream oss;
  write_blif(n, oss);
  return oss.str();
}

namespace {

// Expand a cover row like "1-0 1" into minterms of the truth table.
void apply_cover_row(const std::string& in_bits, bool out_one,
                     std::vector<char>& on_set) {
  const int k = static_cast<int>(in_bits.size());
  std::vector<int> dashes;
  std::uint32_t base = 0;
  for (int j = 0; j < k; ++j) {
    if (in_bits[j] == '1')
      base |= 1u << j;
    else if (in_bits[j] == '-')
      dashes.push_back(j);
    else
      HLP_REQUIRE(in_bits[j] == '0', "bad cover character '" << in_bits[j] << "'");
  }
  for (std::uint32_t d = 0; d < (1u << dashes.size()); ++d) {
    std::uint32_t m = base;
    for (std::size_t b = 0; b < dashes.size(); ++b)
      if ((d >> b) & 1u) m |= 1u << dashes[b];
    on_set[m] = out_one ? 1 : 0;
  }
}

struct PendingGate {
  std::vector<std::string> ins;
  std::string out;
  std::vector<std::pair<std::string, bool>> cover;  // (input bits, out value)
};

}  // namespace

Netlist read_blif(std::istream& is, const BlifLibrary& library) {
  Netlist n;
  bool saw_model = false;
  bool done = false;
  std::vector<std::string> input_names, output_names;
  std::vector<std::pair<std::string, std::string>> latch_dq;
  std::vector<PendingGate> pending;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, std::string>>>>
      subckts;  // model name, (formal, actual) pairs

  // Read logical lines (backslash continuation), strip comments.
  std::string line, logical;
  int line_no = 0;
  int subckt_counter = 0;
  auto flush_names = [&](const std::vector<std::string>& tok) {
    PendingGate g;
    g.out = tok.back();
    g.ins.assign(tok.begin() + 1, tok.end() - 1);
    pending.push_back(std::move(g));
  };
  while (!done && std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (!line.empty() && line.back() == '\\') {
      logical += line.substr(0, line.size() - 1) + " ";
      continue;
    }
    logical += line;
    const auto tok = split_ws(logical);
    logical.clear();
    if (tok.empty()) continue;

    if (tok[0] == ".model") {
      HLP_REQUIRE(tok.size() == 2, "line " << line_no << ": .model <name>");
      HLP_REQUIRE(!saw_model, "line " << line_no << ": multiple .model");
      n.set_name(tok[1]);
      saw_model = true;
    } else if (tok[0] == ".inputs") {
      input_names.insert(input_names.end(), tok.begin() + 1, tok.end());
    } else if (tok[0] == ".outputs") {
      output_names.insert(output_names.end(), tok.begin() + 1, tok.end());
    } else if (tok[0] == ".latch") {
      HLP_REQUIRE(tok.size() >= 3, "line " << line_no << ": .latch <d> <q> ...");
      latch_dq.emplace_back(tok[1], tok[2]);
    } else if (tok[0] == ".names") {
      HLP_REQUIRE(tok.size() >= 2, "line " << line_no << ": .names needs a net");
      flush_names(tok);
    } else if (tok[0] == ".subckt") {
      HLP_REQUIRE(tok.size() >= 2, "line " << line_no << ": .subckt <model> ...");
      std::vector<std::pair<std::string, std::string>> binds;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        const auto eq = tok[i].find('=');
        HLP_REQUIRE(eq != std::string::npos,
                    "line " << line_no << ": bad binding '" << tok[i] << "'");
        binds.emplace_back(tok[i].substr(0, eq), tok[i].substr(eq + 1));
      }
      subckts.emplace_back(tok[1], std::move(binds));
      ++subckt_counter;
    } else if (tok[0] == ".search") {
      // Search paths are satisfied by the pre-registered library; the file
      // name stem must match a registered model (checked at .subckt time).
    } else if (tok[0] == ".end") {
      done = true;
    } else if (tok[0][0] == '.') {
      HLP_REQUIRE(false, "line " << line_no << ": unsupported directive '"
                                 << tok[0] << "'");
    } else {
      // Cover row belonging to the most recent .names.
      HLP_REQUIRE(!pending.empty(), "line " << line_no << ": cover row before .names");
      auto& g = pending.back();
      if (g.ins.empty()) {
        HLP_REQUIRE(tok.size() == 1 && (tok[0] == "0" || tok[0] == "1"),
                    "line " << line_no << ": constant cover must be 0 or 1");
        g.cover.emplace_back("", tok[0] == "1");
      } else {
        HLP_REQUIRE(tok.size() == 2 && tok[0].size() == g.ins.size(),
                    "line " << line_no << ": cover arity mismatch");
        HLP_REQUIRE(tok[1] == "0" || tok[1] == "1",
                    "line " << line_no << ": cover output must be 0 or 1");
        g.cover.emplace_back(tok[0], tok[1] == "1");
      }
    }
  }
  HLP_REQUIRE(saw_model, "missing .model");

  // Create nets: inputs first, then everything referenced.
  for (const auto& in : input_names) n.add_input(in);
  auto net_of = [&](const std::string& name) {
    const NetId existing = n.find_net(name);
    return existing != kNoNet ? existing : n.add_net(name);
  };

  for (const auto& [d, q] : latch_dq) {
    const NetId qd = net_of(q);
    n.add_latch(qd, net_of(d));
  }

  for (const auto& g : pending) {
    HLP_REQUIRE(static_cast<int>(g.ins.size()) <= kMaxTtInputs,
                ".names with " << g.ins.size() << " inputs exceeds "
                               << kMaxTtInputs);
    // Build the on-set. BLIF semantics: rows with output 1 form the on-set;
    // a cover written in the 0-phase complements.
    const bool zero_phase = !g.cover.empty() && !g.cover.front().second;
    std::vector<char> on_set(1u << g.ins.size(), zero_phase ? 1 : 0);
    for (const auto& [bits, one] : g.cover) {
      HLP_REQUIRE(one != zero_phase, "mixed-phase covers are not supported");
      if (g.ins.empty()) {
        on_set[0] = one ? 1 : 0;
      } else {
        apply_cover_row(bits, !zero_phase, on_set);
      }
    }
    if (zero_phase) {
      // Rows listed were the off-set; on_set currently holds 1 everywhere
      // except listed rows (apply_cover_row wrote 0 there). Nothing to do.
    }
    std::uint64_t bits = 0;
    for (std::size_t m = 0; m < on_set.size(); ++m)
      if (on_set[m]) bits |= 1ull << m;
    std::vector<NetId> ins;
    ins.reserve(g.ins.size());
    for (const auto& s : g.ins) ins.push_back(net_of(s));
    n.add_gate(net_of(g.out), std::move(ins),
               TruthTable(static_cast<int>(g.ins.size()), bits));
  }

  int inst = 0;
  for (const auto& [model_name, binds] : subckts) {
    const Netlist& model = library.get(model_name);
    std::unordered_map<std::string, std::string> formal_to_actual;
    for (const auto& [f, a] : binds) formal_to_actual[f] = a;
    std::vector<NetId> actuals;
    actuals.reserve(model.inputs().size());
    for (NetId mi : model.inputs()) {
      auto it = formal_to_actual.find(model.net_name(mi));
      HLP_REQUIRE(it != formal_to_actual.end(),
                  "subckt " << model_name << ": input '" << model.net_name(mi)
                            << "' unbound");
      actuals.push_back(net_of(it->second));
    }
    const std::string prefix =
        model_name + "_i" + std::to_string(inst++) + "_";
    const auto outs = n.instantiate(model, actuals, prefix);
    // Connect bound outputs: formal PO name -> actual net via a buffer.
    for (std::size_t oi = 0; oi < model.outputs().size(); ++oi) {
      const std::string& formal = model.net_name(model.outputs()[oi]);
      auto it = formal_to_actual.find(formal);
      if (it == formal_to_actual.end()) continue;
      n.add_gate(net_of(it->second), {outs[oi]}, TruthTable::buf());
    }
  }

  for (const auto& out : output_names) {
    const NetId o = n.find_net(out);
    HLP_REQUIRE(o != kNoNet, "output '" << out << "' never driven");
    n.add_output(o);
  }
  n.validate();
  return n;
}

Netlist blif_from_string(const std::string& text, const BlifLibrary& library) {
  std::istringstream iss(text);
  return read_blif(iss, library);
}

}  // namespace hlp
