#include "netlist/modules.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"

namespace hlp {
namespace {

std::string bit(const std::string& base, int i) {
  return base + std::to_string(i);
}

// Appends a ripple-carry add of nets a and b (equal widths) into `n`,
// returning the sum nets (modulo 2^w). `tag` uniquifies internal names.
std::vector<NetId> build_ripple_add(Netlist& n, const std::vector<NetId>& a,
                                    const std::vector<NetId>& b,
                                    const std::string& tag) {
  HLP_CHECK(a.size() == b.size() && !a.empty(), "ripple add width mismatch");
  const int w = static_cast<int>(a.size());
  std::vector<NetId> sum(w);
  NetId carry = kNoNet;
  for (int i = 0; i < w; ++i) {
    const std::string s = tag + "_s" + std::to_string(i);
    const std::string c = tag + "_c" + std::to_string(i);
    if (i == 0) {
      sum[i] = n.add_gate_net(s, {a[i], b[i]}, TruthTable::xor2());
      if (w > 1) carry = n.add_gate_net(c, {a[i], b[i]}, TruthTable::and2());
    } else {
      sum[i] = n.add_gate_net(s, {a[i], b[i], carry}, TruthTable::xor3());
      if (i + 1 < w)
        carry = n.add_gate_net(c, {a[i], b[i], carry}, TruthTable::maj3());
    }
  }
  return sum;
}

}  // namespace

int mux_select_bits(int n_inputs) {
  HLP_CHECK(n_inputs >= 1, "mux needs at least one input");
  int bits = 0;
  while ((1 << bits) < n_inputs) ++bits;
  return bits;
}

std::string adder_name(int width) { return "add" + std::to_string(width); }
std::string multiplier_name(int width) { return "mult" + std::to_string(width); }
std::string mux_name(int n_inputs, int width) {
  return "mux" + std::to_string(n_inputs) + "x" + std::to_string(width);
}
std::string register_name(int width) { return "reg" + std::to_string(width); }

Netlist make_adder(int width) {
  HLP_REQUIRE(width >= 1, "adder width must be >= 1");
  Netlist n(adder_name(width));
  std::vector<NetId> a(width), b(width);
  for (int i = 0; i < width; ++i) a[i] = n.add_input(bit("a", i));
  for (int i = 0; i < width; ++i) b[i] = n.add_input(bit("b", i));
  const auto sum = build_ripple_add(n, a, b, "fa");
  // Expose sums under canonical names via buffers (keeps internal tags
  // separate from the port contract).
  for (int i = 0; i < width; ++i)
    n.add_output(n.add_gate_net(bit("s", i), {sum[i]}, TruthTable::buf()));
  n.validate();
  return n;
}

Netlist make_multiplier(int width) {
  HLP_REQUIRE(width >= 1, "multiplier width must be >= 1");
  Netlist n(multiplier_name(width));
  std::vector<NetId> a(width), b(width);
  for (int i = 0; i < width; ++i) a[i] = n.add_input(bit("a", i));
  for (int i = 0; i < width; ++i) b[i] = n.add_input(bit("b", i));

  // Partial-product row i contributes (a & b_i) << i; only the low `width`
  // bits of the final product are kept, so row i only needs bits
  // [i, width). Accumulate rows with ripple adders.
  auto pp = [&](int i, int j) {  // a_j & b_i
    return n.add_gate_net("pp" + std::to_string(i) + "_" + std::to_string(j),
                          {a[j], b[i]}, TruthTable::and2());
  };
  // acc holds product bits [0, width); start with row 0.
  std::vector<NetId> acc(width);
  for (int j = 0; j < width; ++j) acc[j] = pp(0, j);
  for (int i = 1; i < width; ++i) {
    // Add row i (width - i meaningful bits) into acc[i..width).
    std::vector<NetId> hi(acc.begin() + i, acc.end());
    std::vector<NetId> row;
    row.reserve(width - i);
    for (int j = 0; j + i < width; ++j) row.push_back(pp(i, j));
    const auto sum = build_ripple_add(n, hi, row, "r" + std::to_string(i));
    for (int j = 0; j + i < width; ++j) acc[i + j] = sum[j];
  }
  for (int i = 0; i < width; ++i)
    n.add_output(n.add_gate_net(bit("s", i), {acc[i]}, TruthTable::buf()));
  n.validate();
  return n;
}

Netlist make_mux(int n_inputs, int width) {
  HLP_REQUIRE(n_inputs >= 1, "mux needs at least one data input");
  HLP_REQUIRE(width >= 1, "mux width must be >= 1");
  Netlist n(mux_name(n_inputs, width));
  std::vector<std::vector<NetId>> d(n_inputs, std::vector<NetId>(width));
  for (int i = 0; i < n_inputs; ++i)
    for (int j = 0; j < width; ++j)
      d[i][j] = n.add_input("d" + std::to_string(i) + "_" + std::to_string(j));
  const int sbits = mux_select_bits(n_inputs);
  std::vector<NetId> sel(sbits);
  for (int s = 0; s < sbits; ++s) sel[s] = n.add_input(bit("sel", s));

  // Balanced tree over the index range [lo, lo+count): select bit `level`
  // chooses between the lower half (0) and upper half (1). When the upper
  // half is empty the lower result passes through.
  int name_ctr = 0;
  auto tree = [&](auto&& self, int lo, int count, int level, int j) -> NetId {
    if (count == 1) return d[lo][j];
    const int half = 1 << (level - 1);
    const NetId low = self(self, lo, std::min(count, half), level - 1, j);
    if (count <= half) return low;
    const NetId high = self(self, lo + half, count - half, level - 1, j);
    return n.add_gate_net("m" + std::to_string(name_ctr++),
                          {low, high, sel[level - 1]}, TruthTable::mux2());
  };
  for (int j = 0; j < width; ++j) {
    const NetId y = tree(tree, 0, n_inputs, sbits, j);
    n.add_output(n.add_gate_net(bit("y", j), {y}, TruthTable::buf()));
  }
  n.validate();
  return n;
}

Netlist make_register(int width) {
  HLP_REQUIRE(width >= 1, "register width must be >= 1");
  Netlist n(register_name(width));
  for (int i = 0; i < width; ++i) {
    const NetId d = n.add_input(bit("d", i));
    const NetId q = n.add_net(bit("q", i));
    n.add_latch(q, d);
    n.add_output(q);
  }
  n.validate();
  return n;
}

}  // namespace hlp
