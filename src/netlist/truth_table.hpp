// Small truth tables (up to 6 inputs) packed into a 64-bit word.
//
// Gates in the gate-level netlist and LUTs in the mapped netlist both carry
// their logic function as a TruthTable. Bit `i` of the word is the output
// for the input assignment whose bit `j` is ((i >> j) & 1) — input 0 is the
// least significant position.
#pragma once

#include <cstdint>
#include <string>

namespace hlp {

/// Maximum supported fanin of a gate / LUT.
inline constexpr int kMaxTtInputs = 6;

class TruthTable {
 public:
  TruthTable() = default;

  /// Construct from raw bits; only the low 2^num_inputs bits are kept.
  TruthTable(int num_inputs, std::uint64_t bits);

  int num_inputs() const { return num_inputs_; }
  std::uint64_t bits() const { return bits_; }

  /// Output for the input assignment `minterm` (bit j = input j).
  bool eval(std::uint32_t minterm) const;

  /// Number of input assignments (2^num_inputs).
  std::uint32_t num_rows() const { return 1u << num_inputs_; }

  /// True when the function actually depends on input `j`.
  bool depends_on(int j) const;

  /// Returns an equivalent table with unused inputs removed, plus the kept
  /// original input positions via `kept` (ascending).
  TruthTable compress(std::uint32_t* kept_mask = nullptr) const;

  /// "0110..." string, row 0 first (debugging / golden tests).
  std::string to_string() const;

  friend bool operator==(const TruthTable&, const TruthTable&) = default;

  // --- Common gate functions -------------------------------------------
  static TruthTable const0() { return {0, 0u}; }
  static TruthTable const1() { return {0, 1u}; }
  static TruthTable buf() { return {1, 0b10u}; }
  static TruthTable not1() { return {1, 0b01u}; }
  static TruthTable and2() { return {2, 0b1000u}; }
  static TruthTable or2() { return {2, 0b1110u}; }
  static TruthTable xor2() { return {2, 0b0110u}; }
  static TruthTable nand2() { return {2, 0b0111u}; }
  static TruthTable nor2() { return {2, 0b0001u}; }
  static TruthTable xnor2() { return {2, 0b1001u}; }
  /// Full-adder sum: a ^ b ^ c (inputs 0,1,2).
  static TruthTable xor3();
  /// Full-adder carry: majority(a, b, c).
  static TruthTable maj3();
  /// 2:1 mux: input 2 is the select, output = s ? b : a (a=in0, b=in1).
  static TruthTable mux2();

 private:
  int num_inputs_ = 0;
  std::uint64_t bits_ = 0;
};

}  // namespace hlp
