#include "netlist/timing.hpp"

namespace hlp {

int logic_depth(const Netlist& n) { return n.depth(); }

double clock_period_ns(const Netlist& n, const TimingModel& model) {
  const int d = logic_depth(n);
  return d * (model.lut_delay_ns + model.net_delay_ns) + model.reg_overhead_ns;
}

}  // namespace hlp
