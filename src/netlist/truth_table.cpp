#include "netlist/truth_table.hpp"

#include "common/error.hpp"

namespace hlp {

TruthTable::TruthTable(int num_inputs, std::uint64_t bits)
    : num_inputs_(num_inputs) {
  HLP_CHECK(num_inputs >= 0 && num_inputs <= kMaxTtInputs,
            "truth table supports 0.." << kMaxTtInputs << " inputs, got "
                                       << num_inputs);
  const std::uint64_t mask =
      num_inputs == 6 ? ~0ull : ((1ull << (1u << num_inputs)) - 1ull);
  bits_ = bits & mask;
}

bool TruthTable::eval(std::uint32_t minterm) const {
  HLP_CHECK(minterm < num_rows(), "minterm " << minterm << " out of range");
  return (bits_ >> minterm) & 1ull;
}

bool TruthTable::depends_on(int j) const {
  HLP_CHECK(j >= 0 && j < num_inputs_, "input index out of range");
  for (std::uint32_t m = 0; m < num_rows(); ++m) {
    if ((m >> j) & 1u) continue;
    if (eval(m) != eval(m | (1u << j))) return true;
  }
  return false;
}

TruthTable TruthTable::compress(std::uint32_t* kept_mask) const {
  std::uint32_t mask = 0;
  int kept = 0;
  int pos[kMaxTtInputs] = {};
  for (int j = 0; j < num_inputs_; ++j) {
    if (depends_on(j)) {
      mask |= 1u << j;
      pos[kept++] = j;
    }
  }
  std::uint64_t out_bits = 0;
  for (std::uint32_t m = 0; m < (1u << kept); ++m) {
    std::uint32_t full = 0;
    for (int j = 0; j < kept; ++j)
      if ((m >> j) & 1u) full |= 1u << pos[j];
    if (eval(full)) out_bits |= 1ull << m;
  }
  if (kept_mask) *kept_mask = mask;
  return TruthTable(kept, out_bits);
}

std::string TruthTable::to_string() const {
  std::string s(num_rows(), '0');
  for (std::uint32_t m = 0; m < num_rows(); ++m)
    if (eval(m)) s[m] = '1';
  return s;
}

TruthTable TruthTable::xor3() {
  std::uint64_t bits = 0;
  for (std::uint32_t m = 0; m < 8; ++m)
    if (__builtin_popcount(m) & 1) bits |= 1ull << m;
  return {3, bits};
}

TruthTable TruthTable::maj3() {
  std::uint64_t bits = 0;
  for (std::uint32_t m = 0; m < 8; ++m)
    if (__builtin_popcount(m) >= 2) bits |= 1ull << m;
  return {3, bits};
}

TruthTable TruthTable::mux2() {
  // inputs: 0=a, 1=b, 2=s; out = s ? b : a.
  std::uint64_t bits = 0;
  for (std::uint32_t m = 0; m < 8; ++m) {
    const bool a = m & 1u, b = m & 2u, s = m & 4u;
    if (s ? b : a) bits |= 1ull << m;
  }
  return {3, bits};
}

}  // namespace hlp
