// BLIF (Berkeley Logic Interchange Format) reader / writer.
//
// The paper's partial-datapath netlists (Figure 2) are generated in .blif:
// a new model with proper I/O ports, `.search` of the component models, and
// `.subckt` instantiations of the multiplexers and the functional unit.
// This module implements that machinery: `.model/.inputs/.outputs/.names/
// .latch/.subckt/.search/.end`, with subcircuits flattened against a model
// library at read time.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "netlist/netlist.hpp"

namespace hlp {

/// Library of named models available to `.subckt` / `.search` resolution.
class BlifLibrary {
 public:
  /// Register a model under its netlist name (replaces any existing entry).
  void add(Netlist model);
  bool contains(const std::string& name) const;
  const Netlist& get(const std::string& name) const;
  std::size_t size() const { return models_.size(); }

 private:
  std::unordered_map<std::string, Netlist> models_;
};

/// Write a netlist as BLIF. Gate covers are emitted as minterm lists.
void write_blif(const Netlist& n, std::ostream& os);
std::string blif_to_string(const Netlist& n);

/// Parse BLIF. `.subckt` references are flattened using `library`;
/// `.search <file>` lines require models to be pre-registered under the
/// file's model name (no filesystem access — the library *is* the search
/// path). Throws hlp::Error on malformed input or unknown models.
Netlist read_blif(std::istream& is, const BlifLibrary& library = {});
Netlist blif_from_string(const std::string& text,
                         const BlifLibrary& library = {});

}  // namespace hlp
