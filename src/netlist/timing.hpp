// Static timing over a (mapped) netlist — the Quartus timing-analysis
// substitute. Produces the clock-period column of Table 3.
#pragma once

#include "netlist/netlist.hpp"

namespace hlp {

/// Cyclone-II-flavoured delay constants (90 nm). Documented in DESIGN.md:
/// the shape of the paper's results is insensitive to the absolute values
/// as long as both binders are timed identically.
struct TimingModel {
  double lut_delay_ns = 0.45;   // 4-LUT cell delay
  double net_delay_ns = 1.25;   // average local routing per level
  double reg_overhead_ns = 2.0; // clock-to-Q + setup + clock skew
};

/// Critical combinational depth in LUT/gate levels (sources are PIs and
/// latch outputs; endpoints are POs and latch D pins).
int logic_depth(const Netlist& n);

/// Minimum clock period for the netlist under the model.
double clock_period_ns(const Netlist& n, const TimingModel& model = {});

}  // namespace hlp
