// Gate-level generators for the resource library (Section 3: "a resource
// library containing single-cycle resources, including a multiplier, an
// adder, a register, and multiplexers").
//
// All modules follow a canonical port order so instantiation by position is
// unambiguous:
//   adder / multiplier:  inputs  a0..a{w-1}, b0..b{w-1}; outputs s0..s{w-1}
//   mux(n, w):           inputs  d0_0..d0_{w-1}, ..., d{n-1}_*, sel0..sel{S-1};
//                        outputs y0..y{w-1}   (S = ceil(log2 n), 0 for n = 1)
//   register:            inputs  d0..d{w-1}; outputs q0..q{w-1} (latched)
//
// Adders are ripple-carry (XOR3/MAJ3 full adders); multipliers are unsigned
// shift-add arrays producing the low w bits; multiplexers are balanced
// 2:1-mux trees — the structure whose input-size *imbalance* creates the
// unequal path delays the paper's muxDiff term targets.
#pragma once

#include "netlist/netlist.hpp"

namespace hlp {

/// w-bit ripple-carry adder (modulo 2^w).
Netlist make_adder(int width);

/// w-bit unsigned array multiplier, low word.
Netlist make_multiplier(int width);

/// n-way, w-bit-wide multiplexer as a balanced 2:1 tree. n >= 1; n == 1 is
/// a pass-through (no select inputs).
Netlist make_mux(int n_inputs, int width);

/// w-bit register (one latch per bit).
Netlist make_register(int width);

/// Number of select bits a n-way mux uses.
int mux_select_bits(int n_inputs);

/// Canonical library model name, e.g. "add8", "mult8", "mux4x8", "reg8".
std::string adder_name(int width);
std::string multiplier_name(int width);
std::string mux_name(int n_inputs, int width);
std::string register_name(int width);

}  // namespace hlp
