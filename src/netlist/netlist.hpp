// Gate-level netlist.
//
// This is the representation shared by the module generators (adders,
// multipliers, multiplexers), the BLIF reader/writer, the technology mapper
// (whose output is again a Netlist whose gates are K-LUTs), the glitch-aware
// switching-activity estimator, and the unit-delay simulator.
//
// Structure: a set of named nets; each net is driven by exactly one of
//   - a primary input,
//   - a gate (combinational, truth-table function, <= 6 inputs),
//   - a latch output (Q of an edge-triggered register bit).
// Primary outputs and latch D pins reference nets. The combinational part
// must be acyclic (validated).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/truth_table.hpp"

namespace hlp {

using NetId = int;
inline constexpr NetId kNoNet = -1;

/// Combinational gate: out = tt(ins...). Input i of the truth table is
/// ins[i].
struct Gate {
  NetId out = kNoNet;
  std::vector<NetId> ins;
  TruthTable tt;
};

/// One register bit: q takes the value of d at each clock edge; initial 0.
struct Latch {
  NetId q = kNoNet;
  NetId d = kNoNet;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // --- construction ------------------------------------------------------
  /// New undriven net. Names must be unique and non-empty.
  NetId add_net(std::string name);
  /// New net driven as a primary input.
  NetId add_input(std::string name);
  /// Mark an existing net as a primary output.
  void add_output(NetId net);
  /// New gate driving `out` (net must currently be undriven).
  void add_gate(NetId out, std::vector<NetId> ins, TruthTable tt);
  /// New latch driving `q` from `d`.
  void add_latch(NetId q, NetId d);
  /// Convenience: create the output net and the gate in one call.
  NetId add_gate_net(std::string name, std::vector<NetId> ins, TruthTable tt);

  // --- observers ---------------------------------------------------------
  int num_nets() const { return static_cast<int>(net_names_.size()); }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  int num_latches() const { return static_cast<int>(latches_.size()); }
  const std::string& net_name(NetId n) const;
  NetId find_net(const std::string& name) const;  // kNoNet if absent
  const std::vector<NetId>& inputs() const { return inputs_; }
  const std::vector<NetId>& outputs() const { return outputs_; }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Latch>& latches() const { return latches_; }

  /// Index of the gate driving `n`, or -1 when n is a PI / latch Q / undriven.
  int driver_gate(NetId n) const;
  bool is_input(NetId n) const;
  /// True when n is a latch Q output.
  bool is_latch_output(NetId n) const;
  /// True for PI or latch-Q: a source of the combinational network.
  bool is_comb_source(NetId n) const { return is_input(n) || is_latch_output(n); }

  /// Gate indices in topological order (fanins before fanouts).
  /// Throws hlp::Error on a combinational cycle.
  std::vector<int> topo_gates() const;

  /// Gate fanout counts per net (consumers among gates + latch D + PO).
  std::vector<int> fanout_counts() const;

  /// Unit-delay level per net: sources at 0, gate output = 1 + max(fanins).
  std::vector<int> net_levels() const;
  /// Maximum net level (logic depth in gate/LUT levels).
  int depth() const;

  /// Structural checks: unique single drivers, acyclic, all gate inputs and
  /// PO/latch references valid, every non-source net driven.
  void validate() const;

  /// Instantiate `module` inside this netlist: module PIs are bound to
  /// `actual_inputs` (same order/size as module.inputs()); all internal nets
  /// are created with `prefix` prepended; module latches are copied; returns
  /// the nets bound to the module's POs in order. This is the BLIF
  /// `.subckt` mechanism of Figure 2.
  std::vector<NetId> instantiate(const Netlist& module,
                                 const std::vector<NetId>& actual_inputs,
                                 const std::string& prefix);

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::vector<int> driver_gate_of_net_;   // -1 when not gate-driven
  std::vector<char> is_input_net_;
  std::vector<char> is_latch_q_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<Gate> gates_;
  std::vector<Latch> latches_;
};

}  // namespace hlp
