#include "netlist/netlist.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hlp {

NetId Netlist::add_net(std::string name) {
  HLP_REQUIRE(!name.empty(), "net name must be non-empty");
  HLP_REQUIRE(!net_by_name_.count(name), "duplicate net '" << name << "'");
  const NetId id = num_nets();
  net_by_name_.emplace(name, id);
  net_names_.push_back(std::move(name));
  driver_gate_of_net_.push_back(-1);
  is_input_net_.push_back(0);
  is_latch_q_.push_back(0);
  return id;
}

NetId Netlist::add_input(std::string name) {
  const NetId id = add_net(std::move(name));
  is_input_net_[id] = 1;
  inputs_.push_back(id);
  return id;
}

void Netlist::add_output(NetId net) {
  HLP_CHECK(net >= 0 && net < num_nets(), "output net out of range");
  outputs_.push_back(net);
}

void Netlist::add_gate(NetId out, std::vector<NetId> ins, TruthTable tt) {
  HLP_CHECK(out >= 0 && out < num_nets(), "gate output net out of range");
  HLP_CHECK(!is_input_net_[out] && !is_latch_q_[out] &&
                driver_gate_of_net_[out] < 0,
            "net '" << net_name(out) << "' already driven");
  HLP_CHECK(static_cast<int>(ins.size()) == tt.num_inputs(),
            "gate fanin count " << ins.size() << " != truth table inputs "
                                << tt.num_inputs());
  for (NetId n : ins)
    HLP_CHECK(n >= 0 && n < num_nets(), "gate input net out of range");
  driver_gate_of_net_[out] = num_gates();
  gates_.push_back({out, std::move(ins), tt});
}

void Netlist::add_latch(NetId q, NetId d) {
  HLP_CHECK(q >= 0 && q < num_nets() && d >= 0 && d < num_nets(),
            "latch nets out of range");
  HLP_CHECK(!is_input_net_[q] && !is_latch_q_[q] && driver_gate_of_net_[q] < 0,
            "net '" << net_name(q) << "' already driven");
  is_latch_q_[q] = 1;
  latches_.push_back({q, d});
}

NetId Netlist::add_gate_net(std::string name, std::vector<NetId> ins,
                            TruthTable tt) {
  const NetId out = add_net(std::move(name));
  add_gate(out, std::move(ins), tt);
  return out;
}

const std::string& Netlist::net_name(NetId n) const {
  HLP_CHECK(n >= 0 && n < num_nets(), "net id " << n << " out of range");
  return net_names_[n];
}

NetId Netlist::find_net(const std::string& name) const {
  auto it = net_by_name_.find(name);
  return it == net_by_name_.end() ? kNoNet : it->second;
}

int Netlist::driver_gate(NetId n) const {
  HLP_CHECK(n >= 0 && n < num_nets(), "net id out of range");
  return driver_gate_of_net_[n];
}

bool Netlist::is_input(NetId n) const {
  HLP_CHECK(n >= 0 && n < num_nets(), "net id out of range");
  return is_input_net_[n];
}

bool Netlist::is_latch_output(NetId n) const {
  HLP_CHECK(n >= 0 && n < num_nets(), "net id out of range");
  return is_latch_q_[n];
}

std::vector<int> Netlist::topo_gates() const {
  // Kahn's algorithm over gate-to-gate dependencies.
  std::vector<int> pending(num_gates(), 0);
  std::vector<std::vector<int>> dependents(num_gates());
  for (int gi = 0; gi < num_gates(); ++gi) {
    for (NetId in : gates_[gi].ins) {
      const int d = driver_gate_of_net_[in];
      if (d >= 0) {
        ++pending[gi];
        dependents[d].push_back(gi);
      }
    }
  }
  std::vector<int> order;
  order.reserve(num_gates());
  std::vector<int> ready;
  for (int gi = 0; gi < num_gates(); ++gi)
    if (pending[gi] == 0) ready.push_back(gi);
  while (!ready.empty()) {
    const int gi = ready.back();
    ready.pop_back();
    order.push_back(gi);
    for (int dep : dependents[gi])
      if (--pending[dep] == 0) ready.push_back(dep);
  }
  HLP_CHECK(static_cast<int>(order.size()) == num_gates(),
            "combinational cycle detected (" << order.size() << " of "
                                             << num_gates() << " gates sorted)");
  return order;
}

std::vector<int> Netlist::fanout_counts() const {
  std::vector<int> fo(num_nets(), 0);
  for (const auto& g : gates_)
    for (NetId in : g.ins) ++fo[in];
  for (const auto& l : latches_) ++fo[l.d];
  for (NetId o : outputs_) ++fo[o];
  return fo;
}

std::vector<int> Netlist::net_levels() const {
  std::vector<int> level(num_nets(), 0);
  for (int gi : topo_gates()) {
    const auto& g = gates_[gi];
    int lv = 0;
    for (NetId in : g.ins) lv = std::max(lv, level[in]);
    level[g.out] = lv + 1;
  }
  return level;
}

int Netlist::depth() const {
  const auto lv = net_levels();
  return lv.empty() ? 0 : *std::max_element(lv.begin(), lv.end());
}

void Netlist::validate() const {
  for (int n = 0; n < num_nets(); ++n) {
    const bool driven =
        is_input_net_[n] || is_latch_q_[n] || driver_gate_of_net_[n] >= 0;
    HLP_CHECK(driven, "net '" << net_names_[n] << "' has no driver");
  }
  for (NetId o : outputs_)
    HLP_CHECK(o >= 0 && o < num_nets(), "dangling primary output");
  for (const auto& l : latches_)
    HLP_CHECK(l.d >= 0 && l.d < num_nets(), "dangling latch D");
  topo_gates();  // throws on combinational cycles
}

std::vector<NetId> Netlist::instantiate(const Netlist& module,
                                        const std::vector<NetId>& actual_inputs,
                                        const std::string& prefix) {
  HLP_REQUIRE(actual_inputs.size() == module.inputs().size(),
              "instantiate: module '" << module.name() << "' has "
                                      << module.inputs().size()
                                      << " inputs, got "
                                      << actual_inputs.size());
  // Map every module net to a parent net; PIs map to the provided actuals,
  // everything else gets a fresh prefixed net.
  std::vector<NetId> net_map(module.num_nets(), kNoNet);
  for (std::size_t i = 0; i < actual_inputs.size(); ++i) {
    HLP_CHECK(actual_inputs[i] >= 0 && actual_inputs[i] < num_nets(),
              "instantiate: actual input net out of range");
    net_map[module.inputs()[i]] = actual_inputs[i];
  }
  for (NetId n = 0; n < module.num_nets(); ++n)
    if (net_map[n] == kNoNet)
      net_map[n] = add_net(prefix + module.net_name(n));
  for (const auto& l : module.latches()) add_latch(net_map[l.q], net_map[l.d]);
  for (const auto& g : module.gates()) {
    std::vector<NetId> ins;
    ins.reserve(g.ins.size());
    for (NetId in : g.ins) ins.push_back(net_map[in]);
    add_gate(net_map[g.out], std::move(ins), g.tt);
  }
  std::vector<NetId> outs;
  outs.reserve(module.outputs().size());
  for (NetId o : module.outputs()) outs.push_back(net_map[o]);
  return outs;
}

}  // namespace hlp
